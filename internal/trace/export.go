package trace

import (
	"bufio"
	"io"
	"strconv"
	"unicode/utf8"
)

// WriteJSON writes events as Chrome trace_event JSON (the
// {"traceEvents": [...]} form) loadable in chrome://tracing and
// Perfetto. The writer is hand-rolled so the field order is stable
// for golden tests, timestamps are exact integer microsecond values
// with a fixed 3-digit nanosecond remainder (never floats, so never
// NaN/Inf), and task names are escaped to valid UTF-8.
//
// Spans become "ph":"X" complete events; instants become "ph":"i"
// thread-scoped events. pid is always 0 (one simulated cluster);
// tid is node+1 so the driver lane (-1) lands on tid 0.
func WriteJSON(w io.Writer, evs []*Event) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)
	bw.WriteString("{\"traceEvents\":[")
	for i, ev := range evs {
		buf = buf[:0]
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, "\n{\"name\":"...)
		buf = appendString(buf, ev.ID)
		buf = append(buf, ",\"cat\":"...)
		buf = appendString(buf, ev.Phase)
		if ev.Instant {
			buf = append(buf, ",\"ph\":\"i\",\"ts\":"...)
			buf = appendMicros(buf, int64(ev.Begin))
			buf = append(buf, ",\"s\":\"t\""...)
		} else {
			buf = append(buf, ",\"ph\":\"X\",\"ts\":"...)
			buf = appendMicros(buf, int64(ev.Begin))
			buf = append(buf, ",\"dur\":"...)
			buf = appendMicros(buf, int64(ev.Dur))
		}
		buf = append(buf, ",\"pid\":0,\"tid\":"...)
		buf = strconv.AppendInt(buf, int64(ev.Node)+1, 10)
		buf = append(buf, ",\"args\":{\"parent\":"...)
		buf = appendString(buf, ev.Parent)
		buf = append(buf, ",\"res\":"...)
		buf = appendString(buf, ev.Res)
		buf = append(buf, ",\"node\":"...)
		buf = strconv.AppendInt(buf, int64(ev.Node), 10)
		buf = append(buf, ",\"bytes\":"...)
		buf = strconv.AppendInt(buf, ev.Bytes, 10)
		buf = append(buf, "}}"...)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// appendMicros formats ns nanoseconds as microseconds with exactly
// three fractional digits ("1234.500"). Pure integer arithmetic:
// there is no float in the pipeline that could produce NaN or Inf.
func appendMicros(buf []byte, ns int64) []byte {
	if ns < 0 {
		ns = 0
	}
	buf = strconv.AppendInt(buf, ns/1000, 10)
	rem := ns % 1000
	buf = append(buf, '.', byte('0'+rem/100), byte('0'+rem/10%10), byte('0'+rem%10))
	return buf
}

const hexDigits = "0123456789abcdef"

// appendString appends s as a JSON string literal. Control characters
// and the two mandatory escapes use \u00xx / \" / \\ forms; invalid
// UTF-8 bytes are replaced with U+FFFD so the output is always valid
// UTF-8 regardless of what ends up in a task name.
func appendString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"':
				buf = append(buf, '\\', '"')
			case c == '\\':
				buf = append(buf, '\\', '\\')
			case c >= 0x20:
				buf = append(buf, c)
			case c == '\n':
				buf = append(buf, '\\', 'n')
			case c == '\r':
				buf = append(buf, '\\', 'r')
			case c == '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, "\\ufffd"...)
			i++
			continue
		}
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	return append(buf, '"')
}
