package trace

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// PathSegment is one hop of a computed critical path: a span plus the
// idle gap separating it from its predecessor on the path.
type PathSegment struct {
	ID    string
	Phase string
	Res   string
	Node  int
	Begin time.Duration
	End   time.Duration
	Gap   time.Duration // idle time between the previous segment's end and Begin
}

// CriticalPath computes the longest dependency chain through the
// recorded spans by backward chaining from the last finisher: the
// predecessor of a span is the latest-ending span that finished at or
// before the span began. Instants are ignored. The result is ordered
// begin-to-end.
func CriticalPath(evs []*Event) []PathSegment {
	// Zero-duration spans cannot contribute time and would otherwise chain
	// endlessly through same-timestamp ties, so they are not candidates.
	// Neither are "job" frames: the root span encloses the whole run, so it
	// would always win the anchor and reduce every path to itself.
	var spans []*Event
	for _, ev := range evs {
		if !ev.Instant && ev.Dur > 0 && ev.Phase != "job" {
			spans = append(spans, ev)
		}
	}
	if len(spans) == 0 {
		return nil
	}
	// Deterministic anchor: latest end, then longest, then ID.
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		ae, be := a.Begin+a.Dur, b.Begin+b.Dur
		if ae != be {
			return ae > be
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		return a.ID < b.ID
	})
	onPath := make(map[*Event]bool)
	cur := spans[0]
	onPath[cur] = true
	path := []PathSegment{segFor(cur)}
	for len(path) < len(spans) {
		var pred *Event
		for _, s := range spans {
			if onPath[s] || s.Begin+s.Dur > cur.Begin {
				continue
			}
			if pred == nil || better(s, pred) {
				pred = s
			}
		}
		if pred == nil {
			break
		}
		onPath[pred] = true
		seg := segFor(pred)
		path[len(path)-1].Gap = path[len(path)-1].Begin - seg.End
		path = append(path, seg)
		cur = pred
	}
	// Reverse into chronological order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

func segFor(ev *Event) PathSegment {
	return PathSegment{
		ID: ev.ID, Phase: ev.Phase, Res: ev.Res, Node: ev.Node,
		Begin: ev.Begin, End: ev.Begin + ev.Dur,
	}
}

// better reports whether a is a better predecessor than b: later end,
// then later begin, then lexically smaller ID for determinism.
func better(a, b *Event) bool {
	ae, be := a.Begin+a.Dur, b.Begin+b.Dur
	if ae != be {
		return ae > be
	}
	if a.Begin != b.Begin {
		return a.Begin > b.Begin
	}
	return a.ID < b.ID
}

// ResourceBreakdown attributes critical-path time to each segment's
// dominant resource, with inter-segment idle time under "(idle)".
func ResourceBreakdown(path []PathSegment) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, seg := range path {
		res := seg.Res
		if res == "" {
			res = "(other)"
		}
		out[res] += seg.End - seg.Begin
		if seg.Gap > 0 {
			out["(idle)"] += seg.Gap
		}
	}
	return out
}

// WritePathTable renders a critical path as an aligned table with a
// per-resource attribution footer.
func WritePathTable(w io.Writer, path []PathSegment) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tphase\tspan\tnode\tbegin\tdur\tgap\tres")
	for i, seg := range path {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%v\t%v\t%v\t%s\n",
			i, seg.Phase, seg.ID, seg.Node, seg.Begin, seg.End-seg.Begin, seg.Gap, seg.Res)
	}
	tw.Flush()
	bd := ResourceBreakdown(path)
	keys := make([]string, 0, len(bd))
	for k := range bd {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "critical path:")
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%v", k, bd[k])
	}
	fmt.Fprintln(w)
}

type interval struct{ lo, hi time.Duration }

// phaseIntervals collects the [begin,end) intervals of spans whose
// phase is in the given set, merged into a disjoint sorted union.
func phaseIntervals(evs []*Event, phases []string) []interval {
	in := make(map[string]bool, len(phases))
	for _, p := range phases {
		in[p] = true
	}
	var ivs []interval
	for _, ev := range evs {
		if !ev.Instant && in[ev.Phase] && ev.Dur > 0 {
			ivs = append(ivs, interval{ev.Begin, ev.Begin + ev.Dur})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var merged []interval
	for _, iv := range ivs {
		if n := len(merged); n > 0 && iv.lo <= merged[n-1].hi {
			if iv.hi > merged[n-1].hi {
				merged[n-1].hi = iv.hi
			}
		} else {
			merged = append(merged, iv)
		}
	}
	return merged
}

// OverlapFraction measures how much of the spans in bPhases runs
// concurrently with spans in aPhases: the summed intersection of
// B-span time with the union of A intervals, divided by total B-span
// time. Returns 0 when there is no B time. This is the paper's
// shuffle/reduce-overlap metric: for the barrier engine reduce work
// begins only after every map span ends, so the fraction is zero,
// while the flowlet engine accumulates reduce input during loading.
func OverlapFraction(evs []*Event, aPhases, bPhases []string) float64 {
	union := phaseIntervals(evs, aPhases)
	in := make(map[string]bool, len(bPhases))
	for _, p := range bPhases {
		in[p] = true
	}
	var total, overlap time.Duration
	for _, ev := range evs {
		if ev.Instant || !in[ev.Phase] || ev.Dur <= 0 {
			continue
		}
		lo, hi := ev.Begin, ev.Begin+ev.Dur
		total += hi - lo
		for _, iv := range union {
			if iv.hi <= lo {
				continue
			}
			if iv.lo >= hi {
				break
			}
			l, h := max(lo, iv.lo), min(hi, iv.hi)
			if h > l {
				overlap += h - l
			}
		}
	}
	if total <= 0 {
		return 0
	}
	return float64(overlap) / float64(total)
}

// BarrierGap reports whether a scheduling barrier separates the two
// phase families — every bPhases span begins at or after every
// aPhases span ends — and, if so, the size of the gap. A positive gap
// with ok=true is the signature of the baseline engine's map/reduce
// barrier; the flowlet engine's accumulate windows begin while
// loaders are still running, so ok=false there.
func BarrierGap(evs []*Event, aPhases, bPhases []string) (time.Duration, bool) {
	var maxA, minB time.Duration
	haveA, haveB := false, false
	inA := make(map[string]bool, len(aPhases))
	for _, p := range aPhases {
		inA[p] = true
	}
	inB := make(map[string]bool, len(bPhases))
	for _, p := range bPhases {
		inB[p] = true
	}
	for _, ev := range evs {
		if ev.Instant {
			continue
		}
		if inA[ev.Phase] {
			if end := ev.Begin + ev.Dur; !haveA || end > maxA {
				maxA = end
			}
			haveA = true
		}
		if inB[ev.Phase] {
			if !haveB || ev.Begin < minB {
				minB = ev.Begin
			}
			haveB = true
		}
	}
	if !haveA || !haveB || minB < maxA {
		return 0, false
	}
	return minB - maxA, true
}
