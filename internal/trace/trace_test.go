package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hamr-go/hamr/internal/vtime"
)

// The recorder's contract: nil tracers and zero spans are inert (so the
// engines' trace-off paths stay bit-identical to untraced builds), appends
// are safe from any number of goroutines, and Events() enumerates in a
// canonical, timestamp-last order.

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	if tag := tr.JobTag(7); tag != "" {
		t.Errorf("nil tracer JobTag = %q, want empty", tag)
	}
	sp := tr.Start(0, "", "x", "map", "cpu")
	sp.End()
	sp.EndBytes(10)
	tr.Instant(0, "", "y", "fault", 0)
	(Span{}).End()
	(Span{}).EndBytes(1)
	if evs := tr.Events(); evs != nil {
		t.Errorf("nil tracer Events = %v, want nil", evs)
	}
}

func TestJobTagPerTracer(t *testing.T) {
	tr := New(2, vtime.Real())
	if got := tr.JobTag(100); got != "j0" {
		t.Errorf("first JobTag = %q, want j0", got)
	}
	if got := tr.JobTag(101); got != "j1" {
		t.Errorf("second JobTag = %q, want j1", got)
	}
	if got := tr.JobTag(100); got != "j0" {
		t.Errorf("repeated JobTag = %q, want j0", got)
	}
}

func TestEventsCanonicalOrderAndTree(t *testing.T) {
	tr := New(3, vtime.Real())
	tr.Instant(2, "p", "b", "spill", 1)
	sp := tr.Start(1, "", "a", "map", "cpu")
	sp.EndBytes(5)
	tr.Instant(-1, "", "a", "retry", 0)
	evs := tr.Events()
	want := "a|retry||-1|0|true\n" +
		"a|map||1|5|false\n" +
		"b|spill|p|2|1|true\n"
	if got := Tree(evs); got != want {
		t.Errorf("canonical tree mismatch:\n got:\n%s want:\n%s", got, want)
	}
}

// TestManyEventsSingleShard drives one lane past several chunk boundaries
// and checks nothing is lost or reordered.
func TestManyEventsSingleShard(t *testing.T) {
	tr := New(1, vtime.Real())
	const n = 3*chunkSize + 17
	for i := 0; i < n; i++ {
		tr.Instant(0, "", fmt.Sprintf("ev-%06d", i), "spill", int64(i))
	}
	evs := tr.Events()
	if len(evs) != n {
		t.Fatalf("got %d events, want %d", len(evs), n)
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("ev-%06d", i); ev.ID != want {
			t.Fatalf("event %d has ID %q, want %q", i, ev.ID, want)
		}
	}
}

// TestConcurrentRecordAndCollect hammers the sharded appender from many
// goroutines while other goroutines repeatedly collect — the -race
// configuration CI runs. Every recorded event must be observed exactly
// once by the final collection.
func TestConcurrentRecordAndCollect(t *testing.T) {
	tr := New(4, vtime.Real())
	const goroutines = 8
	const perG = 400

	stop := make(chan struct{})
	var collWG sync.WaitGroup
	for c := 0; c < 2; c++ {
		collWG.Add(1)
		go func() {
			defer collWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ev := range tr.Events() {
					if ev.ID == "" {
						t.Error("collected a half-written event")
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := g%5 - 1 // exercises the driver shard (-1) too
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					sp := tr.Start(node, "", fmt.Sprintf("g%d-span-%04d", g, i), "map", "cpu")
					sp.EndBytes(int64(i))
				} else {
					tr.Instant(node, "", fmt.Sprintf("g%d-inst-%04d", g, i), "spill", int64(i))
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	collWG.Wait()

	evs := tr.Events()
	if len(evs) != goroutines*perG {
		t.Fatalf("got %d events, want %d", len(evs), goroutines*perG)
	}
	seen := make(map[string]bool, len(evs))
	for _, ev := range evs {
		if seen[ev.ID] {
			t.Fatalf("event %q collected twice", ev.ID)
		}
		seen[ev.ID] = true
	}
}

// ---- analysis ----

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestCriticalPathChain(t *testing.T) {
	evs := []*Event{
		{ID: "load", Phase: "load", Res: "disk", Node: 0, Begin: 0, Dur: ms(10)},
		{ID: "map", Phase: "map", Res: "cpu", Node: 0, Begin: ms(10), Dur: ms(20)},
		{ID: "side", Phase: "map", Res: "cpu", Node: 1, Begin: 0, Dur: ms(5)},
		{ID: "reduce", Phase: "reduce", Res: "cpu", Node: 0, Begin: ms(35), Dur: ms(15)},
		{ID: "spill", Phase: "spill", Node: 0, Begin: ms(12), Instant: true},
		{ID: "zero", Phase: "map", Node: 0, Begin: ms(50)}, // zero-duration: never a candidate
	}
	cp := CriticalPath(evs)
	var ids []string
	for _, seg := range cp {
		ids = append(ids, seg.ID)
	}
	if got, want := strings.Join(ids, ">"), "load>map>reduce"; got != want {
		t.Fatalf("critical path %s, want %s", got, want)
	}
	if cp[2].Gap != ms(5) {
		t.Errorf("reduce gap = %v, want 5ms", cp[2].Gap)
	}
	bd := ResourceBreakdown(cp)
	if bd["disk"] != ms(10) || bd["cpu"] != ms(35) || bd["(idle)"] != ms(5) {
		t.Errorf("breakdown = %v, want disk=10ms cpu=35ms (idle)=5ms", bd)
	}
	var sb strings.Builder
	WritePathTable(&sb, cp)
	if !strings.Contains(sb.String(), "critical path:") || !strings.Contains(sb.String(), "reduce") {
		t.Errorf("path table missing expected content:\n%s", sb.String())
	}
}

func TestOverlapFraction(t *testing.T) {
	evs := []*Event{
		{ID: "a1", Phase: "load", Node: 0, Begin: 0, Dur: ms(10)},
		{ID: "b1", Phase: "accumulate", Node: 0, Begin: ms(5), Dur: ms(10)},
	}
	if got := OverlapFraction(evs, []string{"load"}, []string{"accumulate"}); got != 0.5 {
		t.Errorf("overlap = %v, want 0.5", got)
	}
	if got := OverlapFraction(evs, []string{"load"}, []string{"missing"}); got != 0 {
		t.Errorf("overlap with no B time = %v, want 0", got)
	}
}

func TestBarrierGap(t *testing.T) {
	barrier := []*Event{
		{ID: "m", Phase: "map", Node: 0, Begin: 0, Dur: ms(10)},
		{ID: "r", Phase: "reduce", Node: 0, Begin: ms(12), Dur: ms(5)},
	}
	if gap, ok := BarrierGap(barrier, []string{"map"}, []string{"reduce"}); !ok || gap != ms(2) {
		t.Errorf("barrier gap = %v ok=%v, want 2ms ok=true", gap, ok)
	}
	overlapped := []*Event{
		{ID: "m", Phase: "map", Node: 0, Begin: 0, Dur: ms(10)},
		{ID: "r", Phase: "reduce", Node: 0, Begin: ms(5), Dur: ms(10)},
	}
	if _, ok := BarrierGap(overlapped, []string{"map"}, []string{"reduce"}); ok {
		t.Error("overlapped phases reported a barrier")
	}
	if _, ok := BarrierGap(barrier, []string{"map"}, []string{"missing"}); ok {
		t.Error("empty B family reported a barrier")
	}
}
