package par

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolExecutesAll(t *testing.T) {
	p := NewPool(4, 16)
	var sum atomic.Int64
	for i := 0; i < 100; i++ {
		i := i
		p.Submit(func() { sum.Add(int64(i)) })
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if p.Executed() != 100 {
		t.Fatalf("Executed = %d", p.Executed())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3, 64)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			n := cur.Add(1)
			for {
				pk := peak.Load()
				if n <= pk || peak.CompareAndSwap(pk, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	p.Close()
	if peak.Load() > 3 {
		t.Fatalf("peak concurrency %d with 3 workers", peak.Load())
	}
}

func TestPoolPanicRecovered(t *testing.T) {
	p := NewPool(2, 4)
	var after atomic.Bool
	p.Submit(func() { panic("boom") })
	p.Submit(func() { after.Store(true) })
	err := p.Close()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Close() = %v, want panic error", err)
	}
	if !after.Load() {
		t.Fatal("pool died after panic")
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	if err := p.Submit(func() {}); err == nil {
		t.Fatal("submit after close succeeded")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit after close succeeded")
	}
}

// TestPoolSubmitCloseRace closes pools while producers are mid-Submit;
// every Submit must either run the task or report an error — a dropped
// task acknowledged with a nil error (the old behaviour of the recover
// path) would show up here as executed+errors < submitted.
func TestPoolSubmitCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		p := NewPool(2, 4)
		const producers = 4
		var executed atomic.Int64
		var errs atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < producers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					if err := p.Submit(func() { executed.Add(1) }); err != nil {
						errs.Add(1)
					}
				}
			}()
		}
		close(start)
		runtime.Gosched()
		p.Close() // races with the producers
		wg.Wait()
		// Tasks submitted after Close errored; the rest ran by the time
		// Close returned. Late stragglers may still land on the drained
		// queue, so give them a moment before the final count.
		deadline := time.Now().Add(time.Second)
		for executed.Load()+errs.Load() < producers*20 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := executed.Load() + errs.Load(); got != producers*20 {
			t.Fatalf("round %d: %d executed + %d errored != %d submitted (a task was silently dropped)",
				round, executed.Load(), errs.Load(), producers*20)
		}
	}
}

func TestPoolTrySubmit(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	p.Submit(func() { <-block }) // occupies the worker
	p.Submit(func() {})          // fills the queue
	accepted := 0
	for i := 0; i < 10; i++ {
		if p.TrySubmit(func() {}) {
			accepted++
		}
	}
	close(block)
	if accepted > 1 {
		t.Fatalf("TrySubmit accepted %d tasks on a full queue", accepted)
	}
}

func TestPoolBusyTime(t *testing.T) {
	p := NewPool(2, 4)
	for i := 0; i < 4; i++ {
		p.Submit(func() { time.Sleep(5 * time.Millisecond) })
	}
	p.Close()
	if p.BusyTime() < 18*time.Millisecond {
		t.Fatalf("BusyTime = %v, want >= ~20ms", p.BusyTime())
	}
	if u := p.Utilization(); u <= 0 {
		t.Fatalf("Utilization = %v", u)
	}
}

func TestGroupCollectsFirstError(t *testing.T) {
	g := NewGroup(0)
	errBoom := errors.New("boom")
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() error {
			if i == 5 {
				return errBoom
			}
			return nil
		})
	}
	if err := g.Wait(); err != errBoom {
		t.Fatalf("Wait = %v", err)
	}
}

func TestGroupLimit(t *testing.T) {
	g := NewGroup(2)
	var cur, peak atomic.Int64
	for i := 0; i < 20; i++ {
		g.Go(func() error {
			n := cur.Add(1)
			for {
				pk := peak.Load()
				if n <= pk || peak.CompareAndSwap(pk, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 2 {
		t.Fatalf("peak %d with limit 2", peak.Load())
	}
}

func TestSemaphore(t *testing.T) {
	s := NewSemaphore(2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded on a full semaphore")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with a free slot")
	}
}
