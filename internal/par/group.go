package par

import (
	"sync"
)

// Group runs functions concurrently and collects the first error, similar
// in spirit to errgroup but with no external dependency and no context
// plumbing (callers cancel through their own mechanisms).
type Group struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  error
	sema chan struct{}
}

// NewGroup returns a Group with an optional concurrency limit; limit <= 0
// means unlimited.
func NewGroup(limit int) *Group {
	g := &Group{}
	if limit > 0 {
		g.sema = make(chan struct{}, limit)
	}
	return g
}

// Go runs fn in a new goroutine, honoring the concurrency limit.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	if g.sema != nil {
		g.sema <- struct{}{}
	}
	go func() {
		defer g.wg.Done()
		if g.sema != nil {
			defer func() { <-g.sema }()
		}
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until all functions started with Go have returned, then
// returns the first error observed (nil if none).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Semaphore is a counting semaphore built on a buffered channel.
type Semaphore chan struct{}

// NewSemaphore returns a semaphore admitting n concurrent holders.
func NewSemaphore(n int) Semaphore { return make(Semaphore, n) }

// Acquire takes one slot, blocking until available.
func (s Semaphore) Acquire() { s <- struct{}{} }

// Release returns one slot.
func (s Semaphore) Release() { <-s }

// TryAcquire takes a slot if one is immediately available.
func (s Semaphore) TryAcquire() bool {
	select {
	case s <- struct{}{}:
		return true
	default:
		return false
	}
}
