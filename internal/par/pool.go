// Package par provides small concurrency utilities shared by the HAMR
// runtime and the MapReduce baseline: a resizable worker pool with busy-time
// accounting, an error-collecting wait group, and a counting semaphore.
//
// The worker pool is the "thread pool" of the paper's per-node runtime
// (Fig. 2): tasks are closures, executed asynchronously, and a task runs
// without blocking until it completes.
package par

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Task is a unit of work executed by a Pool worker. Tasks must not block
// indefinitely; long-running work should be split into finer tasks (this is
// the fine-grain execution property the paper relies on).
type Task func()

// Pool is a fixed-size worker pool. Submitted tasks are queued and executed
// by exactly one worker. A panicking task is recovered; the first panic is
// retained and reported by Close.
type Pool struct {
	tasks    chan Task
	wg       sync.WaitGroup
	busyNS   atomic.Int64
	executed atomic.Int64
	closed   atomic.Bool
	closeMu  sync.RWMutex // submitters hold R, Close holds W around close(tasks)
	panicMu  sync.Mutex
	panicErr error
	workers  int
	start    time.Time
}

// NewPool starts a pool with workers goroutines and a task queue of the
// given capacity. workers and queue must be >= 1.
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{
		tasks:   make(chan Task, queue),
		workers: workers,
		start:   time.Now(),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		p.run(t)
	}
}

func (p *Pool) run(t Task) {
	start := time.Now()
	defer func() {
		p.busyNS.Add(int64(time.Since(start)))
		p.executed.Add(1)
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicErr == nil {
				p.panicErr = fmt.Errorf("par: task panic: %v\n%s", r, debug.Stack())
			}
			p.panicMu.Unlock()
		}
	}()
	t()
}

// Submit enqueues a task, blocking if the queue is full. Submitting to a
// closed pool returns an error instead of panicking so racing producers can
// shut down gracefully.
//
// The close/submit handshake is a read-write lock rather than a recover
// around the channel send: an earlier revision swallowed the send-on-
// closed-channel panic and reported success for a task that was silently
// dropped — and closing a channel concurrently with senders is a data
// race under the memory model even when the panic is caught. A submitter
// blocked on a full queue holds only the read lock, which cannot
// deadlock Close: until Close acquires the write lock the channel is
// still open and workers keep draining it.
func (p *Pool) Submit(t Task) error {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed.Load() {
		return errors.New("par: submit on closed pool")
	}
	p.tasks <- t
	return nil
}

// TrySubmit enqueues a task if queue space is available, without blocking.
// It reports whether the task was accepted.
func (p *Pool) TrySubmit(t Task) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed.Load() {
		return false
	}
	select {
	case p.tasks <- t:
		return true
	default:
		return false
	}
}

// Close stops accepting tasks, waits for queued tasks to drain, and returns
// the first task panic observed (nil if none).
func (p *Pool) Close() error {
	p.closeMu.Lock()
	if p.closed.CompareAndSwap(false, true) {
		close(p.tasks)
	}
	p.closeMu.Unlock()
	p.wg.Wait()
	p.panicMu.Lock()
	defer p.panicMu.Unlock()
	return p.panicErr
}

// Workers returns the number of worker goroutines.
func (p *Pool) Workers() int { return p.workers }

// Executed returns the number of tasks completed so far.
func (p *Pool) Executed() int64 { return p.executed.Load() }

// BusyTime returns the total wall time workers spent executing tasks.
func (p *Pool) BusyTime() time.Duration { return time.Duration(p.busyNS.Load()) }

// Utilization returns busy time divided by (elapsed * workers), a coarse
// resource-utilization figure in [0, 1+] used by the harness to back the
// paper's claim about asynchronous execution improving utilization.
func (p *Pool) Utilization() float64 {
	elapsed := time.Since(p.start)
	if elapsed <= 0 {
		return 0
	}
	return float64(p.BusyTime()) / (float64(elapsed) * float64(p.workers))
}
