package par

import (
	"sync"
	"testing"
	"time"
)

func TestShareCapacityClamp(t *testing.T) {
	s := NewShare(0)
	if got := s.Capacity(); got != 1 {
		t.Fatalf("NewShare(0) capacity = %d, want 1", got)
	}
	s.SetCapacity(-5)
	if got := s.Capacity(); got != 1 {
		t.Fatalf("SetCapacity(-5) capacity = %d, want 1", got)
	}
}

func TestShareTryAcquire(t *testing.T) {
	s := NewShare(2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("TryAcquire failed with free slots")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded past capacity")
	}
	if got := s.InUse(); got != 2 {
		t.Fatalf("InUse = %d, want 2", got)
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
}

func TestShareGrowthAdmitsWaiter(t *testing.T) {
	s := NewShare(1)
	if !s.Acquire() {
		t.Fatal("first Acquire failed")
	}
	admitted := make(chan bool, 1)
	go func() { admitted <- s.Acquire() }()
	select {
	case <-admitted:
		t.Fatal("Acquire succeeded past capacity")
	case <-time.After(20 * time.Millisecond):
	}
	s.SetCapacity(2)
	select {
	case ok := <-admitted:
		if !ok {
			t.Fatal("Acquire returned false after growth")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("growth did not admit the waiter")
	}
}

// TestShareShrinkNeverRevokes: shrinking below the in-use count only
// delays new acquisitions; held slots stay held and the share recovers as
// they are released.
func TestShareShrinkNeverRevokes(t *testing.T) {
	s := NewShare(3)
	for i := 0; i < 3; i++ {
		if !s.Acquire() {
			t.Fatal("Acquire failed with free slots")
		}
	}
	s.SetCapacity(1)
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded while over the shrunk capacity")
	}
	if got := s.InUse(); got != 3 {
		t.Fatalf("InUse after shrink = %d, want 3 (no revocation)", got)
	}
	s.Release()
	s.Release()
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed after drain to below capacity")
	}
}

func TestShareCloseDrainsWaiters(t *testing.T) {
	s := NewShare(1)
	if !s.Acquire() {
		t.Fatal("first Acquire failed")
	}
	const waiters = 4
	var wg sync.WaitGroup
	results := make(chan bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- s.Acquire()
		}()
	}
	time.Sleep(10 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(results)
	for ok := range results {
		if ok {
			t.Fatal("blocked Acquire returned true after Close")
		}
	}
	if s.Acquire() || s.TryAcquire() {
		t.Fatal("Acquire on closed share succeeded")
	}
}
