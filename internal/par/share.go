package par

import "sync"

// Share is a counting semaphore whose capacity can be resized while held —
// the primitive behind multi-job fair sharing: the cluster's job manager
// gives every running job a Share over the cluster's loader slots and
// re-divides the capacities as jobs come and go. Shrinking below the
// in-use count never revokes held slots; it only delays new acquisitions
// until enough holders release.
type Share struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	used   int
	closed bool
}

// NewShare creates a share with the given capacity (clamped to >= 1).
func NewShare(capacity int) *Share {
	if capacity < 1 {
		capacity = 1
	}
	s := &Share{cap: capacity}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire blocks until a slot is free and takes it. It returns false —
// without taking a slot — once the share is closed.
func (s *Share) Acquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed && s.used >= s.cap {
		s.cond.Wait()
	}
	if s.closed {
		return false
	}
	s.used++
	return true
}

// TryAcquire takes a slot if one is free without blocking.
func (s *Share) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.used >= s.cap {
		return false
	}
	s.used++
	return true
}

// Release returns one slot.
func (s *Share) Release() {
	s.mu.Lock()
	if s.used > 0 {
		s.used--
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SetCapacity resizes the share (clamped to >= 1) and wakes waiters that
// a growth may admit.
func (s *Share) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.cap = n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Capacity returns the current capacity.
func (s *Share) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cap
}

// InUse returns the number of held slots.
func (s *Share) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Close fails all pending and future Acquires. Held slots may still be
// Released; Close is idempotent.
func (s *Share) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
