package hamr

// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus ablations of the design decisions DESIGN.md calls out.
//
//	go test -bench=Table2 -benchtime=1x
//	go test -bench=. -benchmem
//
// Benchmarks default to the tiny input scale so a full -bench=. pass stays
// in CI territory; set HAMR_BENCH_SCALE=small to run at the harness's
// calibrated scale (the one cmd/hamrbench uses, where the Table 2 shape
// checks hold). Speedups are attached to figure benchmarks via
// b.ReportMetric as "paperx" (published) and "x" (measured).

import (
	"os"
	"testing"

	"github.com/hamr-go/hamr/internal/apps/hamrapps"
	"github.com/hamr-go/hamr/internal/bench"
	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/datagen"
)

func benchScale() bench.Scale {
	if os.Getenv("HAMR_BENCH_SCALE") == "small" {
		return bench.SmallScale()
	}
	return bench.TinyScale()
}

func newHarness(b *testing.B) *bench.Harness {
	b.Helper()
	return bench.NewHarness(bench.DefaultSpec(), benchScale())
}

// BenchmarkTable1ClusterBringup measures standing up and tearing down the
// Table 1 cluster (nodes, runtimes, fabric, HDFS, kv-store, YARN).
func BenchmarkTable1ClusterBringup(b *testing.B) {
	spec := bench.DefaultSpec()
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Options{
			NumNodes:  spec.Nodes,
			Core:      spec.CoreConfig(),
			DiskModel: &spec.Disk,
			NetModel:  &spec.Net,
		})
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// BenchmarkTable2 regenerates Table 2: every benchmark on both engines.
// Sub-benchmark names follow Table 2's row order.
func BenchmarkTable2(b *testing.B) {
	h := newHarness(b)
	for _, bm := range bench.AllBenchmarks {
		bm := bm
		b.Run(string(bm)+"/IDH", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RunMR(bm); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(string(bm)+"/HAMR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RunHAMR(bm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Combiner regenerates Table 3: the histogram benchmarks
// with the HAMR combiner enabled.
func BenchmarkTable3Combiner(b *testing.B) {
	h := newHarness(b)
	for _, bm := range []bench.Benchmark{bench.HistogramMovies, bench.HistogramRatings} {
		bm := bm
		b.Run(string(bm), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RunHAMRCombiner(bm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchFigure(b *testing.B, benchmarks []bench.Benchmark) {
	h := newHarness(b)
	for _, bm := range benchmarks {
		bm := bm
		b.Run(string(bm), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				row, err := h.RunRow(bm)
				if err != nil {
					b.Fatal(err)
				}
				speedup = row.Speedup
			}
			b.ReportMetric(speedup, "x")
			b.ReportMetric(bench.PaperTable2[bm].Speedup, "paperx")
		})
	}
}

// BenchmarkFigure3a regenerates Figure 3(a): speedups of the
// feature-exploiting benchmarks.
func BenchmarkFigure3a(b *testing.B) { benchFigure(b, bench.Figure3aBenchmarks) }

// BenchmarkFigure3b regenerates Figure 3(b): speedups of the IO-intensive
// benchmarks.
func BenchmarkFigure3b(b *testing.B) { benchFigure(b, bench.Figure3bBenchmarks) }

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §6)

func ablationCluster(b *testing.B, cfg core.Config) (*cluster.Cluster, map[int][]string) {
	b.Helper()
	spec := bench.DefaultSpec()
	cfg.NumNodes = spec.Nodes
	c, err := cluster.New(cluster.Options{
		NumNodes:  spec.Nodes,
		Core:      cfg,
		DiskModel: &spec.Disk,
		NetModel:  &spec.Net,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	sc := benchScale()
	data := datagen.Text(datagen.TextConfig{Seed: 7, Vocabulary: sc.WordCountVocab, Lines: sc.WordCountLines})
	files, err := hamrapps.DistributeLocalText(c, "ablation", data, 2*spec.Nodes)
	if err != nil {
		b.Fatal(err)
	}
	return c, files
}

func runWordCountOn(b *testing.B, c *cluster.Cluster, files map[int][]string, partial bool) {
	b.Helper()
	loader := &hamrapps.LocalTextLoader{Files: files}
	var g *core.Graph
	var err error
	if partial {
		g, _, err = hamrapps.BuildWordCount(hamrapps.WordCountOptions{Loader: loader})
	} else {
		gr := core.NewGraph("wordcount-reduce")
		sink := core.NewCollectSink()
		ld, _ := gr.AddLoader("load", loader)
		mp, _ := gr.AddMap("split", hamrapps.SplitWords{})
		rd, _ := gr.AddReduce("count", reduceSum{})
		sk, _ := gr.AddSink("out", sink)
		gr.Connect(ld, mp, core.WithRouting(core.RouteLocal))
		gr.Connect(mp, rd)
		gr.Connect(rd, sk)
		g = gr
	}
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Run(g); err != nil {
		b.Fatal(err)
	}
}

type reduceSum struct{}

func (reduceSum) Reduce(key string, values []any, ctx core.Context) error {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return ctx.Emit(core.KV{Key: key, Value: total})
}

// BenchmarkAblationPartialReduce compares partial reduce (early, bounded
// aggregation) against a full reduce (barrier, grouped values) on
// WordCount — the trade-off §2 motivates partial reduce with.
func BenchmarkAblationPartialReduce(b *testing.B) {
	spec := bench.DefaultSpec()
	for _, mode := range []struct {
		name    string
		partial bool
	}{{"PartialReduce", true}, {"Reduce", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			c, files := ablationCluster(b, spec.CoreConfig())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runWordCountOn(b, c, files, mode.partial)
			}
		})
	}
}

// BenchmarkAblationBinSize sweeps the scheduling quantum: small bins mean
// more scheduling and per-message overhead, huge bins lose overlap and
// coarsen flow control.
func BenchmarkAblationBinSize(b *testing.B) {
	spec := bench.DefaultSpec()
	for _, size := range []int{32, 512, 8192} {
		size := size
		b.Run(map[int]string{32: "bin32", 512: "bin512", 8192: "bin8192"}[size], func(b *testing.B) {
			cfg := spec.CoreConfig()
			cfg.BinSize = size
			c, files := ablationCluster(b, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runWordCountOn(b, c, files, true)
			}
		})
	}
}

// BenchmarkAblationFlowControl runs the skewed HistogramRatings workload
// with and without the flow-control window; without it, producers run
// unthrottled and in-flight data grows unchecked (§2).
func BenchmarkAblationFlowControl(b *testing.B) {
	spec := bench.DefaultSpec()
	sc := benchScale()
	data := datagen.Movies(datagen.MoviesConfig{Seed: 3, Movies: sc.HistogramMovies, Users: sc.HistogramUsers})
	for _, mode := range []struct {
		name   string
		window int
	}{{"window32", 32}, {"disabled", 0}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			cfg := spec.CoreConfig()
			cfg.FlowControlWindow = mode.window
			c, _ := ablationCluster(b, cfg)
			files, err := hamrapps.DistributeLocalText(c, "hr", data, 2*spec.Nodes)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, _, err := hamrapps.BuildHistogramRatings(hamrapps.HistogramOptions{
					Loader: &hamrapps.LocalTextLoader{Files: files},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.Run(g)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Stalls), "stalls")
					b.ReportMetric(float64(res.Gated), "gated")
				}
			}
		})
	}
}

// BenchmarkAblationSerializedUpdates measures the paper's proposed fix for
// hot shared variables (§5.2): serializing partial-reduce updates on the
// skewed HistogramRatings workload.
func BenchmarkAblationSerializedUpdates(b *testing.B) {
	spec := bench.DefaultSpec()
	sc := benchScale()
	data := datagen.Movies(datagen.MoviesConfig{Seed: 3, Movies: sc.HistogramMovies, Users: sc.HistogramUsers})
	for _, mode := range []struct {
		name      string
		serialize bool
	}{{"striped", false}, {"serialized", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			c, _ := ablationCluster(b, spec.CoreConfig())
			files, err := hamrapps.DistributeLocalText(c, "hr", data, 2*spec.Nodes)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, _, err := hamrapps.BuildHistogramRatings(hamrapps.HistogramOptions{
					Loader:           &hamrapps.LocalTextLoader{Files: files},
					SerializeUpdates: mode.serialize,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Run(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWholeGraphDeployment contrasts the paper's
// whole-graph-per-node deployment (§2, unlike Dryad) against restricting
// the aggregation flowlet to a subset of nodes via a narrowing
// partitioner — fewer nodes share the reduce-side work.
func BenchmarkAblationWholeGraphDeployment(b *testing.B) {
	spec := bench.DefaultSpec()
	for _, mode := range []struct {
		name  string
		nodes int // nodes carrying the aggregation (0 = all)
	}{{"wholeGraph", 0}, {"twoNodeSubgraph", 2}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			c, files := ablationCluster(b, spec.CoreConfig())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gr := core.NewGraph("wc")
				sink := core.NewCountSink()
				ld, _ := gr.AddLoader("load", &hamrapps.LocalTextLoader{Files: files})
				mp, _ := gr.AddMap("split", hamrapps.SplitWords{})
				pr, _ := gr.AddPartialReduce("count", hamrapps.SumCounts{})
				sk, _ := gr.AddSink("out", sink)
				gr.Connect(ld, mp, core.WithRouting(core.RouteLocal))
				if mode.nodes > 0 {
					sub := mode.nodes
					gr.Connect(mp, pr, core.WithPartitioner(func(key string, n int) int {
						return core.HashPartition(key, sub)
					}))
				} else {
					gr.Connect(mp, pr)
				}
				gr.Connect(pr, sk)
				if _, err := c.Run(gr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
