package hamr

import (
	"time"

	"github.com/hamr-go/hamr/internal/cluster"
	"github.com/hamr-go/hamr/internal/core"
	"github.com/hamr-go/hamr/internal/stream"
)

// Streaming support: the same flowlet graphs run over unbounded sources
// through micro-batch epochs — one engine and one programming model for
// both layers of the Lambda architecture, as the original system claims.

type (
	// StreamRecord is one stream element (event time + payload line).
	StreamRecord = stream.Record
	// StreamSource is an unbounded buffer fed by producers and drained
	// once per epoch.
	StreamSource = stream.Source
	// StreamExecutor runs a streaming query as a sequence of micro-batch
	// jobs over a cluster.
	StreamExecutor = stream.Executor
	// StreamGraphBuilder constructs the per-epoch graph.
	StreamGraphBuilder = stream.GraphBuilder
	// WindowAssign re-keys records by (tumbling window, extracted key).
	WindowAssign = stream.WindowAssign
	// Accumulate folds counts into the kv-store so aggregates persist
	// across epochs.
	Accumulate = stream.Accumulate
)

// NewStreamSource returns an empty stream source.
func NewStreamSource() *StreamSource { return stream.NewSource() }

// NewStreamExecutor creates an executor over a cluster, source and graph
// builder.
func NewStreamExecutor(c *Cluster, src *StreamSource, build StreamGraphBuilder) *StreamExecutor {
	return stream.NewExecutor((*cluster.Cluster)(c), src, build)
}

// WindowOf truncates an event time to its tumbling window start.
func WindowOf(t time.Time, width time.Duration) time.Time { return stream.WindowOf(t, width) }

// WindowKey composes a (window, key) pair into one flowlet key.
func WindowKey(window time.Time, key string) string { return stream.WindowKey(window, key) }

// SplitWindowKey parses WindowKey's output.
func SplitWindowKey(s string) (time.Time, string, error) { return stream.SplitWindowKey(s) }

// StreamTotals reads the accumulated totals of an Accumulate table.
func StreamTotals(c *Cluster, table string) map[string]int64 {
	return stream.ReadTotals(c.Store().Table(table), c.NumNodes())
}

var _ core.Mapper = WindowAssign{}
